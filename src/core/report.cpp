#include "core/report.h"

#include <cstdio>
#include <ostream>
#include <string>

namespace xp::core {

std::string format_relative(const EffectEstimate& estimate) {
  char buffer[80];
  std::snprintf(buffer, sizeof(buffer), "%+7.1f%% [%+7.1f%%,%+7.1f%%]%s",
                estimate.relative() * 100.0,
                estimate.relative_ci_low() * 100.0,
                estimate.relative_ci_high() * 100.0,
                estimate.significant ? "*" : " ");
  return buffer;
}

void print_header(std::ostream& os, std::string_view title) {
  os << '\n' << std::string(100, '=') << '\n'
     << "  " << title << '\n'
     << std::string(100, '=') << '\n';
}

void print_figure5_table(std::ostream& os, const EstimateTable& naive,
                         const EstimateTable& tte,
                         const EstimateTable& spillover) {
  char line[256];
  std::snprintf(line, sizeof(line), "%-22s | %-32s %-32s %-32s %-32s",
                "metric", "naive tau(0.05)", "naive tau(0.95)",
                "TTE (paired link)", "spillover s(0.95)");
  os << line << '\n' << std::string(160, '-') << '\n';
  for (Metric metric : kAllMetrics) {
    const std::string name(metric_name(metric));
    std::snprintf(
        line, sizeof(line), "%-22s | %-32s %-32s %-32s %-32s", name.c_str(),
        format_relative(naive.row(name + "/tau(link2)").effect()).c_str(),
        format_relative(naive.row(name + "/tau(link1)").effect()).c_str(),
        format_relative(tte.row(name + "/tte").effect()).c_str(),
        format_relative(spillover.row(name + "/spillover").effect()).c_str());
    os << line << '\n';
  }
  os << "  (* = significant at 95%; values relative to the global control "
        "cell)\n";
}

void print_estimate_table(std::ostream& os, const EstimateTable& table) {
  char line[256];
  std::snprintf(line, sizeof(line), "%-38s | %-34s %-28s", table.estimator.c_str(),
                "estimate (replicate 1)", "across-replicate relative");
  os << line << '\n' << std::string(104, '-') << '\n';
  for (std::size_t i = 0; i < table.rows.size(); ++i) {
    const EstimateRow& row = table.rows[i];
    const EstimateSpread spread = relative_spread(row);
    std::snprintf(line, sizeof(line),
                  "%-38s | %-34s %+6.1f%% [%+6.1f%%, %+6.1f%%]",
                  table.names[i].c_str(),
                  format_relative(row.effect()).c_str(), spread.mean * 100.0,
                  spread.min * 100.0, spread.max * 100.0);
    os << line << '\n';
  }
}

void print_cell_table(std::ostream& os, const PairedLinkReport& report,
                      std::string_view unit_label, double unit_scale) {
  char line[160];
  os << "cells for " << metric_name(report.metric) << " (" << unit_label
     << "):\n";
  std::snprintf(line, sizeof(line), "  %-26s %12s %12s", "",
                "control", "treatment");
  os << line << '\n';
  for (int link = 0; link < 2; ++link) {
    std::snprintf(line, sizeof(line), "  link %d (%3.0f%% treated)      %12.3f %12.3f",
                  link + 1, link == 0 ? 95.0 : 5.0,
                  report.cell_mean[link][0] * unit_scale,
                  report.cell_mean[link][1] * unit_scale);
    os << line << '\n';
  }
}

}  // namespace xp::core
