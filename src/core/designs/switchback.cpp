#include "core/designs/switchback.h"

#include <stdexcept>

namespace xp::core {

std::vector<Observation> switchback_observations(
    std::span<const Observation> rows, const SwitchbackOptions& options) {
  if (options.day_treated.empty()) {
    throw std::invalid_argument("switchback: no interval assignment");
  }
  std::vector<Observation> out;
  for (const Observation& row : rows) {
    if (row.day >= options.day_treated.size()) continue;
    const bool treated_day = options.day_treated[row.day];
    if (treated_day) {
      if (row.group != options.treated_source_link || !row.treated) continue;
    } else {
      if (row.group != options.control_source_link || row.treated) continue;
    }
    Observation obs = row;
    obs.treated = treated_day;
    out.push_back(obs);
  }
  return out;
}

std::vector<Observation> switchback_observations(
    std::span<const video::SessionRecord> rows, Metric metric,
    const SwitchbackOptions& options) {
  return switchback_observations(select(rows, metric, RowFilter{}), options);
}

EffectEstimate switchback_tte(std::span<const Observation> rows,
                              const SwitchbackOptions& options) {
  const auto obs = switchback_observations(rows, options);
  return hourly_fe_analysis(obs, options.analysis);
}

EffectEstimate switchback_tte(std::span<const video::SessionRecord> rows,
                              Metric metric,
                              const SwitchbackOptions& options) {
  return switchback_tte(select(rows, metric, RowFilter{}), options);
}

}  // namespace xp::core
