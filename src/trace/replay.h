// TraceSource: the trace-replay DataSource — the library's third backend,
// fed by recorded session logs instead of a simulator. It closes the loop
// the paper cares about: the same estimator registry that reads live
// simulations runs over *recorded* telemetry, and a simulated world
// exported through the schema can be replayed to calibrate
// simulation-vs-replay agreement (the check the paper performs on Netflix
// production data).
//
// Replicate weeks: recorded data is one realized week, but estimators
// want an across-week stability band. run(allocation, seed) synthesizes a
// replicate by seed-pure block-bootstrap over *hourly cells*: rows are
// grouped by (link, absolute hour), and each link's cell sequence is
// resampled with replacement — preserving within-hour congestion coupling
// (the paper's whole point: sessions sharing a link-hour are not
// independent) while re-drawing the week's hour mix. kVerbatim replays
// the log unchanged regardless of seed (useful for exact
// export-vs-direct-run comparisons).
//
// Registry contract: stateless after construction, pure in
// (allocation, seed). A recorded log cannot be re-randomized, so
// `allocation` is ignored (documented on core::DataSource);
// default_allocation() and intended_treated_fraction() report the log's
// recorded design so the SRM guardrail tests the right null.
// SourceOptions::duration_scale is honored by truncating the replayed
// horizon at construction: only sessions arriving before
// duration_scale x recorded-horizon replay (see lab/datasource.h).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/datasource.h"
#include "trace/schema.h"
#include "video/session_record.h"

namespace xp::trace {

enum class ReplayMode : std::uint8_t {
  kVerbatim,        ///< replay the log as-is; ignores the seed
  kBlockBootstrap,  ///< resample hourly cells per link (seed-pure)
};

struct ReplayConfig {
  std::string name = "trace/replay";  ///< registry key to report
  ReplayMode mode = ReplayMode::kBlockBootstrap;
  /// Truncate the replayed horizon to this fraction of the recorded one
  /// (values >= 1 replay the full log; recorded data cannot be extended).
  double duration_scale = 1.0;
  /// Cooperative work budget in replayed rows (util/budget.h): run()
  /// throws util::BudgetExceeded once a replicate's materialized rows
  /// cross the cap — checked between drawn hourly cells, so blocks stay
  /// whole and the overshoot is at most one cell. 0 (the default) is
  /// unlimited.
  std::uint64_t max_rows = 0;
};

class TraceSource final : public core::DataSource {
 public:
  /// Takes ownership of the log. Rows outside the (scaled) horizon are
  /// dropped here, once; hourly-cell indices are precomputed so run() is
  /// read-only over shared state (the concurrency contract).
  TraceSource(TraceLog log, ReplayConfig config);

  std::string_view name() const noexcept override { return name_; }

  /// The allocation recorded in the log header (falling back to the log's
  /// observed treated fraction when the header does not carry one).
  double default_allocation() const noexcept override;

  /// Replays (mode kVerbatim) or block-bootstraps (mode kBlockBootstrap)
  /// the log into the standard metric columns. `allocation` is ignored —
  /// a recorded design cannot be re-randomized.
  core::ObservationTable run(double allocation,
                             std::uint64_t seed) const override;

  /// The recorded design's intended treated fraction (SRM null), from the
  /// header; falls back to the log's observed fraction.
  double intended_treated_fraction(double allocation) const noexcept override;

  /// Rows that survived horizon truncation (what run() replays).
  std::size_t replayed_rows() const noexcept { return sessions_.size(); }
  /// Hourly (link, hour) cells the bootstrap resamples over.
  std::size_t hour_cells() const noexcept { return cells_.size(); }
  const TraceMeta& meta() const noexcept { return meta_; }

 private:
  struct Cell {
    std::uint32_t begin = 0;  ///< [begin, end) into cell_rows_
    std::uint32_t end = 0;
  };

  std::string name_;
  ReplayMode mode_;
  std::uint64_t max_rows_ = 0;  ///< ReplayConfig::max_rows (0 = unlimited)
  TraceMeta meta_;
  double observed_treated_fraction_ = 0.0;
  std::vector<video::SessionRecord> sessions_;  ///< log order, truncated
  std::vector<std::uint32_t> cell_rows_;  ///< row indices grouped by cell
  std::vector<Cell> cells_;               ///< ordered by (link, hour)
  /// cells_ index ranges per link, ordered by link id: {link, begin, end}.
  std::vector<std::array<std::uint32_t, 3>> link_spans_;
};

}  // namespace xp::trace
