// Figure 6: hourly client throughput, normalized to the largest hourly
// value — (a) a baseline day with no treatment (links overlap), (b) an
// experiment day (the mostly-capped link stays uncongested longer and
// carries higher throughput through the peak).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/session_metrics.h"

namespace {

// Mean hourly session throughput per link for one day of rows.
std::array<std::vector<double>, 2> hourly_throughput(
    const std::vector<xp::video::SessionRecord>& rows, std::uint32_t day) {
  std::array<std::vector<double>, 2> sums{std::vector<double>(24, 0.0),
                                          std::vector<double>(24, 0.0)};
  std::array<std::vector<double>, 2> counts{std::vector<double>(24, 0.0),
                                            std::vector<double>(24, 0.0)};
  for (const auto& row : rows) {
    if (row.day != day) continue;
    sums[row.link][row.hour] += row.avg_throughput_bps;
    counts[row.link][row.hour] += 1.0;
  }
  for (int link = 0; link < 2; ++link) {
    for (int hour = 0; hour < 24; ++hour) {
      if (counts[link][hour] > 0.0) sums[link][hour] /= counts[link][hour];
    }
  }
  return sums;
}

void print_day(const std::array<std::vector<double>, 2>& series,
               const char* label) {
  double top = 0.0;
  for (const auto& link_series : series) {
    for (double v : link_series) top = std::max(top, v);
  }
  std::printf("\n%s (normalized to largest hourly value)\n", label);
  std::printf("%5s | %8s %8s\n", "hour", "link 1", "link 2");
  for (int hour = 0; hour < 24; ++hour) {
    std::printf("%5d | %8.3f %8.3f\n", hour, series[0][hour] / top,
                series[1][hour] / top);
  }
}

}  // namespace

int main() {
  xp::bench::header(
      "Figure 6 — hourly normalized throughput: baseline day vs "
      "experiment day");

  const auto [baseline, experiment] = xp::bench::baseline_and_experiment(3.0);

  print_day(hourly_throughput(baseline.sessions, 1),
            "(a) baseline day: no capping anywhere — links overlap");
  print_day(hourly_throughput(experiment.sessions, 1),
            "(b) experiment day: link 1 95% capped — less congested and "
            "faster through the peak");
  return 0;
}
