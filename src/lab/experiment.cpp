#include "lab/experiment.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "stats/rng.h"

namespace xp::lab {

std::uint64_t cell_seed(std::uint64_t base, std::size_t index) noexcept {
  return stats::substream_seed(base, index);
}

std::uint64_t estimator_seed(std::uint64_t base,
                             std::size_t estimator_index) noexcept {
  // A different odd constant than cell_seed, so the analysis substreams
  // never collide with the simulation substreams of the same spec seed.
  return stats::mix64(base ^ (0xbf58476d1ce4e5b9ULL + estimator_index));
}

ExperimentReport run_experiment(const ExperimentSpec& spec) {
  return run_experiment(spec, util::global_runner());
}

ExperimentReport run_experiment(const ExperimentSpec& spec,
                                util::Runner& runner) {
  if (spec.replicates == 0) {
    throw std::invalid_argument("run_experiment: replicates == 0");
  }
  const std::unique_ptr<DataSource> source =
      make_scenario(spec.scenario, spec.tuning);
  // Resolve every estimator key up front: an unknown key throws (listing
  // the registered alternatives) before any simulation work starts.
  std::vector<std::unique_ptr<core::Estimator>> estimators;
  estimators.reserve(spec.estimators.size());
  for (const std::string& key : spec.estimators) {
    estimators.push_back(core::make_estimator(key));
  }

  ExperimentReport report;
  report.scenario = spec.scenario;
  report.allocations = spec.allocations;
  if (report.allocations.empty()) {
    report.allocations.push_back(source->default_allocation());
  }
  report.replicates = spec.replicates;
  report.cells.resize(report.allocations.size() * report.replicates);

  // Cells are independent worlds with index-derived seeds written into
  // index-addressed slots: bit-for-bit identical at any thread count.
  runner.parallel_for(report.cells.size(), [&](std::size_t i) {
    ExperimentCell& cell = report.cells[i];
    cell.allocation = report.allocations[i / report.replicates];
    cell.replicate = i % report.replicates;
    cell.seed = cell_seed(spec.seed, i);
    cell.table = source->run(cell.allocation, cell.seed);
  });

  // Analysis stage: fan (estimator, metric) jobs across the runner. Each
  // job's substream derives from its (estimator, metric) indices — not
  // from scheduling order — and rows land in index-addressed slots, so
  // the estimates are bit-for-bit identical at any thread count and
  // match a serial Estimator::estimate over the same report.
  if (!estimators.empty() && !report.cells.empty()) {
    const std::vector<std::string>& metrics =
        report.cells.front().table.metrics;
    const std::size_t num_metrics = metrics.size();
    std::vector<std::vector<core::EstimateRow>> slots(estimators.size() *
                                                      num_metrics);
    runner.parallel_for(slots.size(), [&](std::size_t i) {
      const std::size_t e = i / num_metrics;
      const std::size_t m = i % num_metrics;
      core::EstimatorOptions options;
      options.analysis = spec.analysis;
      options.seed = core::metric_seed(estimator_seed(spec.seed, e), m);
      slots[i] = estimators[e]->estimate_metric(report, metrics[m], options);
    });

    report.estimates.resize(estimators.size());
    for (std::size_t e = 0; e < estimators.size(); ++e) {
      core::EstimateTable& table = report.estimates[e];
      table.estimator = spec.estimators[e];
      for (std::size_t m = 0; m < num_metrics; ++m) {
        for (core::EstimateRow& row : slots[e * num_metrics + m]) {
          table.add_row(std::move(row));
        }
      }
    }
  }
  return report;
}

}  // namespace xp::lab
