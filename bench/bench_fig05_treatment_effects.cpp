// Figure 5: the headline table — per-metric treatment effects with 95%
// CIs in the bitrate-capping paired-link experiment: naive tau(0.05),
// naive tau(0.95), approximate TTE, and spillover, all relative to the
// global control cell.
#include <iostream>

#include "bench/bench_util.h"
#include "core/designs/paired_link.h"
#include "core/report.h"

int main() {
  xp::bench::header(
      "Figure 5 — treatment effects in the bitrate-capping paired-link "
      "experiment (5 days)");
  const auto run = xp::bench::main_experiment();
  std::printf("sessions: %zu  (link1: 95%% capped, link2: 5%% capped)\n\n",
              run.sessions.size());
  const auto reports = xp::core::analyze_all_metrics(run.sessions);
  xp::core::print_figure5_table(std::cout, reports);
  std::printf(
      "\npaper's qualitative findings to compare against:\n"
      "  - naive A/B tests say capping *hurts* throughput (~-5%%) and "
      "min RTT; TTE says it helps (+12%% tput, -24%% min RTT)\n"
      "  - spillover is nonzero for most metrics (capping helps the "
      "uncapped traffic too)\n"
      "  - video bitrate drops ~-33%% with small spillover; play delay "
      "improves ~-10%% (TTE) while naive tests miss it\n");
  return 0;
}
