// Quickstart: the core workflow in ~60 lines.
//
//  1. Run a world (here: the Section 3 lab with the parallel-connections
//     treatment at a 20% allocation).
//  2. Estimate the naive A/B effect.
//  3. Ramp the allocation (gradual deployment) and run the SUTVA battery
//     to see whether that A/B number can be trusted as a TTE estimate.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
#include <cstdio>

#include "core/designs/gradual.h"
#include "lab/scenarios.h"

int main() {
  // A 10-app lab world on a 2 Gb/s droptail bottleneck (fast to run).
  xp::lab::LabConfig config;
  config.dumbbell.bottleneck_bps = 2e9;
  config.dumbbell.warmup = 2.0;
  config.dumbbell.duration = 8.0;

  // The treatment: applications open 2 TCP connections instead of 1.
  const auto scenario = xp::lab::make_lab_scenario(
      xp::lab::Treatment::kTwoConnections, xp::lab::LabMetric::kThroughput,
      config);

  // --- Step 1-2: one naive A/B test at a 20% allocation ---
  const auto rows = scenario(/*p=*/0.2, /*seed=*/42);
  double mu_t = 0.0, mu_c = 0.0, nt = 0.0, nc = 0.0;
  for (const auto& row : rows) {
    if (row.treated) {
      mu_t += row.outcome;
      nt += 1.0;
    } else {
      mu_c += row.outcome;
      nc += 1.0;
    }
  }
  mu_t /= nt;
  mu_c /= nc;
  std::printf("naive A/B at 20%%: treatment %.0f Mb/s vs control %.0f Mb/s "
              "(%+.0f%%)\n",
              mu_t / 1e6, mu_c / 1e6, 100.0 * (mu_t / mu_c - 1.0));

  // --- Step 3: would deploying it everywhere actually help? ---
  xp::core::GradualOptions options;
  options.allocations = {0.2, 0.5, 0.9};
  options.replications = 2;
  const auto report = xp::core::run_gradual_deployment(scenario, options);

  std::printf("\ngradual deployment:\n");
  for (const auto& step : report.steps) {
    std::printf("  p=%.1f  tau=%+.0f%%  spillover=%+.0f%%\n",
                step.allocation, 100.0 * step.tau.relative(),
                100.0 * step.spillover.relative());
  }
  std::printf("TTE estimate: %+.0f%% of baseline\n",
              100.0 * report.tte.relative());
  std::printf("congestion interference detected: %s\n",
              report.tests.interference_detected ? "YES" : "no");
  std::printf(
      "\nmoral: the A/B test promised a big win; the total treatment "
      "effect is ~0.\n");
  return 0;
}
