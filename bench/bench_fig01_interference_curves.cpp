// Figure 1: the conceptual picture. (a) Without interference, mu_T(p) and
// mu_C(p) are flat in the allocation p, so any A/B test estimates TTE.
// (b) With congestion interference both curves move with p and the A/B
// difference is constant while TTE is zero.
//
// We realize (a) by giving every application its own isolated bottleneck
// (no shared queue -> SUTVA holds mechanically) and (b) by the shared-
// bottleneck parallel-connections world of Figure 2a.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "lab/scenarios.h"
#include "sim/dumbbell.h"

namespace {

// Isolated world: each app alone on a private 1 Gb/s link; treatment is
// two connections (which cannot help: the private link is the cap).
double isolated_mu(bool treated) {
  xp::sim::DumbbellConfig config;
  config.bottleneck_bps = 1e9;
  config.warmup = 2.0;
  config.duration = 6.0;
  std::vector<xp::sim::AppSpec> specs{
      {treated ? std::size_t{2} : std::size_t{1},
       xp::sim::CcAlgorithm::kReno, false, "solo"}};
  return xp::sim::run_dumbbell(config, specs)
      .apps[0]
      .metrics.throughput_bps;
}

}  // namespace

int main() {
  xp::bench::header("Figure 1 — potential-outcome curves vs allocation p");

  std::printf("(a) no interference (isolated per-app bottlenecks):\n");
  const double iso_treated = isolated_mu(true);
  const double iso_control = isolated_mu(false);
  std::printf("%6s | %12s %12s\n", "p", "mu_T(p)", "mu_C(p)");
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    // Isolated units do not depend on p at all.
    std::printf("%6.1f | %9.1f Mbps %9.1f Mbps\n", p, iso_treated / 1e6,
                iso_control / 1e6);
  }
  std::printf("  -> tau(p) constant and equal to TTE; SUTVA holds.\n");

  std::printf("\n(b) congestion interference (shared 10 Gb/s bottleneck):\n");
  xp::lab::LabConfig config;
  config.dumbbell.warmup = 3.0;
  config.dumbbell.duration = 9.0;
  const auto sweep = xp::lab::run_allocation_sweep(
      xp::lab::Treatment::kTwoConnections, config);
  std::printf("%6s | %12s %12s %12s\n", "p", "mu_T(p)", "mu_C(p)",
              "tau(p)");
  for (const auto& point : sweep) {
    if (point.treated_count == 0 ||
        point.treated_count == 10) {
      continue;
    }
    std::printf("%6.1f | %9.1f Mbps %9.1f Mbps %9.1f Mbps\n",
                point.allocation, point.mu_treated_throughput / 1e6,
                point.mu_control_throughput / 1e6,
                (point.mu_treated_throughput -
                 point.mu_control_throughput) /
                    1e6);
  }
  std::printf(
      "  -> both curves fall with p; tau(p) stays large while TTE "
      "(mu_T(1) - mu_C(0)) is ~0.\n");
  return 0;
}
