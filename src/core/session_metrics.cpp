#include "core/session_metrics.h"

namespace xp::core {

std::string_view metric_name(Metric metric) noexcept {
  switch (metric) {
    case Metric::kThroughput:
      return "avg throughput";
    case Metric::kMinRtt:
      return "min RTT";
    case Metric::kMeanRtt:
      return "mean RTT";
    case Metric::kPlayDelay:
      return "play delay";
    case Metric::kCancelledStart:
      return "cancelled starts";
    case Metric::kBitrate:
      return "video bitrate";
    case Metric::kPerceptualQuality:
      return "perceptual quality";
    case Metric::kRetransmitFraction:
      return "% retransmitted bytes";
    case Metric::kRebufferRate:
      return "sessions w/ rebuffer";
    case Metric::kRebufferCount:
      return "rebuffer count";
    case Metric::kStability:
      return "video stability";
    case Metric::kBytes:
      return "bytes sent";
  }
  return "?";
}

bool lower_is_better(Metric metric) noexcept {
  switch (metric) {
    case Metric::kMinRtt:
    case Metric::kMeanRtt:
    case Metric::kPlayDelay:
    case Metric::kCancelledStart:
    case Metric::kRetransmitFraction:
    case Metric::kRebufferRate:
    case Metric::kRebufferCount:
      return true;
    default:
      return false;
  }
}

double metric_value(const video::SessionRecord& row, Metric metric) noexcept {
  switch (metric) {
    case Metric::kThroughput:
      return row.avg_throughput_bps;
    case Metric::kMinRtt:
      return row.min_rtt;
    case Metric::kMeanRtt:
      return row.mean_rtt;
    case Metric::kPlayDelay:
      return row.play_delay;
    case Metric::kCancelledStart:
      return row.cancelled_start ? 1.0 : 0.0;
    case Metric::kBitrate:
      return row.avg_bitrate_bps;
    case Metric::kPerceptualQuality:
      return row.perceptual_quality;
    case Metric::kRetransmitFraction:
      return row.retransmit_fraction;
    case Metric::kRebufferRate:
      return row.had_rebuffer ? 1.0 : 0.0;
    case Metric::kRebufferCount:
      return static_cast<double>(row.rebuffer_count);
    case Metric::kStability:
      return row.stability;
    case Metric::kBytes:
      return row.bytes_sent;
  }
  return 0.0;
}

bool matches(const video::SessionRecord& row,
             const RowFilter& filter) noexcept {
  if (filter.link >= 0 && row.link != filter.link) return false;
  if (filter.treated >= 0 && static_cast<int>(row.treated) != filter.treated) {
    return false;
  }
  if (filter.day_min >= 0 &&
      row.day < static_cast<std::uint32_t>(filter.day_min)) {
    return false;
  }
  if (filter.day_max >= 0 &&
      row.day > static_cast<std::uint32_t>(filter.day_max)) {
    return false;
  }
  return true;
}

bool matches(const Observation& row, const RowFilter& filter) noexcept {
  if (filter.link >= 0 && row.group != filter.link) return false;
  if (filter.treated >= 0 && static_cast<int>(row.treated) != filter.treated) {
    return false;
  }
  if (filter.day_min >= 0 &&
      row.day < static_cast<std::uint32_t>(filter.day_min)) {
    return false;
  }
  if (filter.day_max >= 0 &&
      row.day > static_cast<std::uint32_t>(filter.day_max)) {
    return false;
  }
  return true;
}

namespace {

/// An all-pass filter keeps every row, so the output can reserve exactly
/// rows.size() instead of guessing half (the paired-link table conversion
/// extracts every metric column over all sessions this way).
bool matches_everything(const RowFilter& filter) noexcept {
  return filter.link < 0 && filter.treated < 0 && filter.day_min < 0 &&
         filter.day_max < 0;
}

}  // namespace

std::vector<Observation> select(std::span<const Observation> rows,
                                const RowFilter& filter,
                                int relabel_treated) {
  std::vector<Observation> out;
  out.reserve(matches_everything(filter) ? rows.size() : rows.size() / 2);
  for (const Observation& row : rows) {
    if (!matches(row, filter)) continue;
    Observation obs = row;
    if (relabel_treated >= 0) obs.treated = relabel_treated != 0;
    out.push_back(obs);
  }
  return out;
}

std::vector<Observation> select(std::span<const video::SessionRecord> rows,
                                Metric metric, const RowFilter& filter,
                                int relabel_treated) {
  std::vector<Observation> out;
  out.reserve(matches_everything(filter) ? rows.size() : rows.size() / 2);
  for (const video::SessionRecord& row : rows) {
    if (!matches(row, filter)) continue;
    Observation obs;
    obs.unit = row.session_id;
    obs.account = row.account_id;
    obs.treated =
        relabel_treated < 0 ? row.treated : relabel_treated != 0;
    obs.outcome = metric_value(row, metric);
    obs.hour_of_day = row.hour;
    obs.hour_index = static_cast<std::uint64_t>(row.day) * 24 + row.hour;
    obs.day = row.day;
    obs.group = row.link;
    out.push_back(obs);
  }
  return out;
}

}  // namespace xp::core
