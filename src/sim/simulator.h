// The discrete-event simulation kernel.
//
// A Simulator owns the clock and the event queue. Components (links,
// connections, applications) hold a reference to it and schedule callbacks.
// Single-threaded by design: determinism matters more than parallelism for
// experiment reproduction, and one scenario run is milliseconds-to-seconds
// of CPU.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "sim/types.h"

namespace xp::sim {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  Time now() const noexcept { return now_; }

  /// Schedule at an absolute time (clamped to `now` if in the past).
  EventId schedule_at(Time at, Callback&& callback);
  /// Schedule `delay` seconds from now (negative delays clamp to zero).
  EventId schedule_in(Time delay, Callback&& callback);
  void cancel(EventId id) { queue_.cancel(id); }

  /// Run until the queue drains or the clock passes `until`.
  /// Events at exactly `until` are executed.
  void run_until(Time until);

  /// Run until the event queue is empty.
  void run();

  /// Stop a run_until/run loop from inside a callback.
  void stop() noexcept { stopped_ = true; }

  /// Cooperative work budget: run_until throws util::BudgetExceeded
  /// before executing event max_events + 1 (0 = unlimited, the default).
  /// The cap counts *lifetime* executed events, checked between events —
  /// a runaway event cascade can overshoot by at most one callback, and
  /// whether the budget trips is a pure function of (config, seed).
  void set_event_budget(std::uint64_t max_events) noexcept {
    event_budget_ = max_events;
  }

  std::uint64_t events_executed() const noexcept { return executed_; }
  std::uint64_t events_scheduled() const noexcept {
    return queue_.scheduled_count();
  }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  std::uint64_t executed_ = 0;
  std::uint64_t event_budget_ = 0;  ///< 0 = unlimited
  bool stopped_ = false;
};

}  // namespace xp::sim
