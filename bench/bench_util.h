// Shared helpers for the figure-reproduction benchmark binaries.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <utility>

#include "lab/runner.h"
#include "video/cluster.h"

namespace xp::bench {

inline void header(std::string_view title) {
  std::printf("\n%.*s\n", 100,
              "====================================================="
              "===============================================");
  std::printf("  %s\n", std::string(title).c_str());
  std::printf("%.*s\n", 100,
              "====================================================="
              "===============================================");
}

/// The canonical 5-day paired-link experiment of Section 4 (Wed-Sun).
inline video::ClusterResult main_experiment(double days = 5.0,
                                            std::uint64_t seed = 2021) {
  video::ClusterConfig config;
  config.days = days;
  config.seed = seed;
  return video::run_paired_links(config);
}

/// The baseline week: no treatment anywhere (Section 4.1 / A/A data).
inline video::ClusterResult baseline_week(double days = 5.0,
                                          std::uint64_t seed = 1917) {
  video::ClusterConfig config;
  config.days = days;
  config.seed = seed;
  config.treat_probability[0] = 0.0;
  config.treat_probability[1] = 0.0;
  return video::run_paired_links(config);
}

/// Baseline week and main experiment, fanned across cores. Both worlds are
/// independent and deterministic in their own seeds, so the pair is
/// identical to two serial runs at any thread count.
inline std::pair<video::ClusterResult, video::ClusterResult>
baseline_and_experiment(double days = 5.0) {
  std::pair<video::ClusterResult, video::ClusterResult> results;
  lab::global_runner().parallel_for(2, [&](std::size_t i) {
    if (i == 0) {
      results.first = baseline_week(days);
    } else {
      results.second = main_experiment(days);
    }
  });
  return results;
}

}  // namespace xp::bench
