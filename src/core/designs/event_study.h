// Event studies / interrupted time series (Section 5.1, 5.3).
//
// A deployment is modeled as a switch day: before it, the system runs
// control; from it on, treatment. The emulation draws pre-switch rows
// from the mostly-control link and post-switch rows from the mostly-
// treated link, then runs the hourly FE pipeline. Seasonality (weekday
// vs weekend) is exactly the confound that biases this design — the
// paper found event studies false-positive on most metrics in A/A
// calibration, while switchbacks did not.
#pragma once

#include <span>
#include <vector>

#include "core/analysis.h"
#include "core/session_metrics.h"

namespace xp::core {

struct EventStudyOptions {
  /// First treated day (switch happens at its midnight boundary).
  std::uint32_t switch_day = 3;
  std::uint8_t treated_source_link = 0;
  std::uint8_t control_source_link = 1;
  AnalysisOptions analysis;
};

/// Build the emulated event-study dataset from a metric column of
/// observations (rows keep their own arm labels; group is the link).
/// ObservationTable columns feed this directly.
std::vector<Observation> event_study_observations(
    std::span<const Observation> rows, const EventStudyOptions& options);

std::vector<Observation> event_study_observations(
    std::span<const video::SessionRecord> rows, Metric metric,
    const EventStudyOptions& options);

/// TTE estimate from the event study.
EffectEstimate event_study_tte(std::span<const Observation> rows,
                               const EventStudyOptions& options);
EffectEstimate event_study_tte(std::span<const video::SessionRecord> rows,
                               Metric metric,
                               const EventStudyOptions& options);

}  // namespace xp::core
