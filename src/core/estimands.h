// Causal estimands for congested-network experiments (Section 2).
//
//   mu_T(p), mu_C(p) — mean potential outcome of treated/control units at
//                      treatment allocation p.
//   tau(p)  = mu_T(p) - mu_C(p)          average treatment effect at p —
//             what a naive A/B test estimates.
//   TTE     = mu_T(1) - mu_C(0)          total treatment effect — what the
//             experimenter actually wants: deploy-to-all vs nobody.
//   s(p)    = mu_C(p) - mu_C(0)          spillover of treatment on control.
//   rho(p)  = mu_T(p) - mu_C(0)          partial treatment effect (used in
//             gradual-deployment event studies, Section 5.1).
//
// SUTVA (no interference) holds iff tau(p) is constant in p, rho(p) ==
// tau(p), and s(p) == 0 — the testable battery in interference.h. In
// congested networks treatment and control share queues, so none of these
// need hold ("congestion interference").
#pragma once

namespace xp::core {

/// A point estimate with inference summary. `relative` values are
/// normalized by the global control mean (the paper normalizes everything
/// by the 95%-control cell on link 2 for interpretability).
struct EffectEstimate {
  double estimate = 0.0;
  double std_error = 0.0;
  double ci_low = 0.0;
  double ci_high = 0.0;
  double p_value = 1.0;
  bool significant = false;   ///< 95% two-sided
  double baseline = 0.0;      ///< the normalizing control mean
  /// estimate / baseline (0 when baseline == 0).
  double relative() const noexcept {
    return baseline == 0.0 ? 0.0 : estimate / baseline;
  }
  double relative_ci_low() const noexcept {
    return baseline == 0.0 ? 0.0 : ci_low / baseline;
  }
  double relative_ci_high() const noexcept {
    return baseline == 0.0 ? 0.0 : ci_high / baseline;
  }
};

enum class Estimand {
  kAverageTreatmentEffect,  ///< tau(p)
  kTotalTreatmentEffect,    ///< TTE
  kSpillover,               ///< s(p)
  kPartialTreatmentEffect,  ///< rho(p)
};

constexpr const char* estimand_name(Estimand e) noexcept {
  switch (e) {
    case Estimand::kAverageTreatmentEffect:
      return "tau(p)";
    case Estimand::kTotalTreatmentEffect:
      return "TTE";
    case Estimand::kSpillover:
      return "spillover";
    case Estimand::kPartialTreatmentEffect:
      return "rho(p)";
  }
  return "?";
}

}  // namespace xp::core
