// Deterministic fault injection for the paired-link cluster.
//
// Real experimentation platforms run on degraded infrastructure: peering
// links lose capacity or go dark, demand surges past the forecast, and
// client telemetry arrives late, truncated, or not at all. The estimators
// in core/ must not silently mislead in that regime, so the cluster can
// replay *named, seed-pure* fault plans: every fault is a deterministic
// function of (plan, config seed) — no wall clocks, no extra draws from
// the arrival RNG stream — so a faulted world is exactly as reproducible
// as a clean one, and an empty plan leaves the simulation bit-for-bit
// identical to a cluster with no fault code at all.
//
// Three fault families, mirroring what passive trace analyzers must cope
// with in recorded data:
//
//  * LinkFault      — capacity degradation or outage windows on one link
//                     (capacity_factor 0 is a full outage).
//  * DemandFault    — flash-crowd windows multiplying the arrival rate.
//  * TelemetryFault — per-session record drop / corruption probabilities,
//                     decided by hashing the session id (never by drawing
//                     from the simulation stream).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xp::video {

/// Capacity fault window: while t is in [start_seconds, end_seconds) the
/// link's capacity is multiplied by capacity_factor. Overlapping windows
/// compose multiplicatively. factor 0 = full outage.
struct LinkFault {
  int link = 0;  ///< which paired link (0 or 1)
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  double capacity_factor = 1.0;
};

/// Flash-crowd window: while t is in [start_seconds, end_seconds) the
/// demand model's arrival rate is multiplied by rate_multiplier.
/// Overlapping windows compose multiplicatively.
struct DemandFault {
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  double rate_multiplier = 1.0;
};

/// Telemetry loss applied to the emitted session records (after the run;
/// the tick loop never sees it). Each record's fate is a pure function of
/// (run seed, session id): dropped records vanish from the dataset,
/// corrupted records keep their identity and QoE fields but lose the
/// network metrics (throughput, RTTs, retransmits become NaN) — the
/// truncated-capture shape passive analyzers guard against.
struct TelemetryFault {
  double drop_probability = 0.0;
  double corrupt_probability = 0.0;
};

/// A named bundle of fault events. Default-constructed plans are empty
/// and change nothing: the cluster's no-fault path stays bit-identical.
struct FaultPlan {
  std::string name;  ///< label for manifests and error messages
  std::vector<LinkFault> link_faults;
  std::vector<DemandFault> demand_faults;
  TelemetryFault telemetry;

  bool empty() const noexcept {
    return link_faults.empty() && demand_faults.empty() &&
           telemetry.drop_probability <= 0.0 &&
           telemetry.corrupt_probability <= 0.0;
  }

  /// Multiply every window by `scale` — SourceOptions::duration_scale
  /// shrinks the horizon, and the plan's windows must shrink with it or a
  /// smoke run never reaches its faults.
  void scale_time(double scale) noexcept;
};

/// Validate a fault plan. Throws std::invalid_argument naming the
/// offending field (windows must be ordered and non-negative, factors and
/// multipliers non-negative, probabilities in [0, 1], link in {0, 1}).
void validate(const FaultPlan& plan);

/// Product of the capacity factors of every window active on `link` at
/// time `t`. 1.0 when none are.
double capacity_factor(const FaultPlan& plan, int link, double t) noexcept;

/// Product of the rate multipliers of every demand window active at `t`.
double demand_multiplier(const FaultPlan& plan, double t) noexcept;

/// What telemetry loss does to one session's record.
enum class TelemetryFate : std::uint8_t { kKept, kDropped, kCorrupted };

/// Deterministic per-record fate: a seed-pure hash of (seed, session_id)
/// thresholded against the drop then corrupt probabilities. Consumes no
/// RNG stream, so enabling telemetry faults cannot perturb the simulated
/// world — only the dataset recorded from it.
TelemetryFate telemetry_fate(const TelemetryFault& fault, std::uint64_t seed,
                             std::uint64_t session_id) noexcept;

}  // namespace xp::video
