#include "core/experiment_data.h"

#include <sstream>
#include <stdexcept>

namespace xp::core {

const ExperimentCell& ExperimentReport::cell(std::size_t allocation_index,
                                             std::size_t replicate) const {
  if (allocation_index >= allocations.size() || replicate >= replicates) {
    std::ostringstream message;
    message << "ExperimentReport::cell"
            << (scenario.empty() ? "" : " (scenario \"" + scenario + "\")")
            << ": requested (allocation " << allocation_index
            << ", replicate " << replicate << ") but the report has "
            << allocations.size() << " allocation(s) x " << replicates
            << " replicate(s)";
    throw std::out_of_range(message.str());
  }
  return cells[allocation_index * replicates + replicate];
}

const ExperimentCell* ExperimentReport::first_ok_cell() const noexcept {
  for (const ExperimentCell& cell : cells) {
    if (cell.status.ok()) return &cell;
  }
  return nullptr;
}

CompletionManifest ExperimentReport::manifest() const noexcept {
  CompletionManifest manifest;
  manifest.cells = cells.size();
  for (const ExperimentCell& cell : cells) {
    manifest.attempts += cell.status.attempts;
    switch (cell.status.state) {
      case CellState::kOk:
        ++manifest.ok;
        if (cell.quality.srm_flag) ++manifest.srm_flagged;
        break;
      case CellState::kFailed:
        ++manifest.failed;
        break;
      case CellState::kSkipped:
        ++manifest.skipped;
        break;
      case CellState::kQualityHold:
        ++manifest.quality_hold;
        break;
      case CellState::kBudgetExceeded:
        ++manifest.budget_exceeded;
        break;
    }
  }
  return manifest;
}

bool ExperimentReport::has_estimates(
    std::string_view estimator) const noexcept {
  for (const EstimateTable& table : estimates) {
    if (table.estimator == estimator) return true;
  }
  return false;
}

const EstimateTable& ExperimentReport::estimates_for(
    std::string_view estimator) const {
  for (const EstimateTable& table : estimates) {
    if (table.estimator == estimator) return table;
  }
  std::ostringstream message;
  message << "ExperimentReport::estimates_for: no estimates from \""
          << estimator << "\"; the report carries:";
  if (estimates.empty()) message << " (none — spec.estimators was empty?)";
  for (const EstimateTable& table : estimates) {
    message << " \"" << table.estimator << "\"";
  }
  throw std::invalid_argument(message.str());
}

}  // namespace xp::core
