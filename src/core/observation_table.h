// The common output of every data-generating backend: named columns of
// unit observations (one column per metric, rows aligned across columns),
// named scalar aggregates (e.g. link utilization), and named time series
// (e.g. hourly utilization). Designs and estimators in core/ consume the
// columns directly; the lab/ scenario registry's DataSource interface
// returns one of these per simulated world.
//
// (This is the data half of the spec -> data -> estimate pipeline; the
// estimate half is EstimateTable in core/estimate_table.h.)
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/observation.h"

namespace xp::core {

struct ObservationTable {
  std::vector<std::string> metrics;  ///< column names (core metric names)
  std::vector<std::vector<Observation>> columns;

  std::vector<std::string> aggregate_names;
  std::vector<double> aggregates;

  std::vector<std::string> series_names;
  std::vector<std::vector<double>> series;

  void add_column(std::string metric, std::vector<Observation> rows);
  void add_aggregate(std::string name, double value);
  void add_series(std::string name, std::vector<double> values);

  bool has_column(std::string_view metric) const noexcept;

  /// Lookup by name; throws std::invalid_argument naming the available
  /// entries on a miss.
  const std::vector<Observation>& column(std::string_view metric) const;
  double aggregate(std::string_view name) const;
  const std::vector<double>& series_values(std::string_view name) const;
};

}  // namespace xp::core
