#include "video/fluid_link.h"

#include <algorithm>
#include <cmath>

namespace xp::video {

namespace {

// The water-fill's per-tick passes, as free functions with restrict
// parameters so the vectorizer need not version for aliasing. FP sums use
// four independent accumulator lanes: a single-lane chain is a serial
// dependency the vectorizer may not reassociate without fast-math, while
// the fixed 4-lane order is deterministic and SIMD-friendly.

/// Sum of positive demands (4-lane order) and their count. Counts ride in
/// double lanes (exact far past any pool size) so the loop stays a single
/// homogeneous SIMD block; integer lanes next to double lanes defeat the
/// vectorizer's type analysis.
[[gnu::noinline]] double positive_sum_count(const double* __restrict d,
                                            std::size_t n,
                                            std::size_t& count) noexcept {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  double c0 = 0.0, c1 = 0.0, c2 = 0.0, c3 = 0.0;
  std::size_t i = 0;
  // vec-check: waterfill-demand-sum
  for (; i + 4 <= n; i += 4) {
    s0 += std::max(d[i], 0.0);
    s1 += std::max(d[i + 1], 0.0);
    s2 += std::max(d[i + 2], 0.0);
    s3 += std::max(d[i + 3], 0.0);
    c0 += d[i] > 0.0 ? 1.0 : 0.0;
    c1 += d[i + 1] > 0.0 ? 1.0 : 0.0;
    c2 += d[i + 2] > 0.0 ? 1.0 : 0.0;
    c3 += d[i + 3] > 0.0 ? 1.0 : 0.0;
  }
  for (; i < n; ++i) {
    s0 += std::max(d[i], 0.0);
    c0 += d[i] > 0.0 ? 1.0 : 0.0;
  }
  count = static_cast<std::size_t>((c0 + c1) + (c2 + c3));
  return (s0 + s1) + (s2 + s3);
}

/// One refinement round: total demand at or under `level` (4-lane order)
/// and the count strictly above it.
[[gnu::noinline]] double satisfied_under(const double* __restrict d,
                                         std::size_t n, double level,
                                         std::size_t& above) noexcept {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  // vec-check: waterfill-refine
  for (; i + 4 <= n; i += 4) {
    const double e0 = std::max(d[i], 0.0);
    const double e1 = std::max(d[i + 1], 0.0);
    const double e2 = std::max(d[i + 2], 0.0);
    const double e3 = std::max(d[i + 3], 0.0);
    s0 += e0 <= level ? e0 : 0.0;
    s1 += e1 <= level ? e1 : 0.0;
    s2 += e2 <= level ? e2 : 0.0;
    s3 += e3 <= level ? e3 : 0.0;
    a0 += d[i] > level ? 1.0 : 0.0;
    a1 += d[i + 1] > level ? 1.0 : 0.0;
    a2 += d[i + 2] > level ? 1.0 : 0.0;
    a3 += d[i + 3] > level ? 1.0 : 0.0;
  }
  for (; i < n; ++i) {
    const double e = std::max(d[i], 0.0);
    s0 += e <= level ? e : 0.0;
    a0 += d[i] > level ? 1.0 : 0.0;
  }
  above = static_cast<std::size_t>((a0 + a1) + (a2 + a3));
  return (s0 + s1) + (s2 + s3);
}

/// Clamp every demand to the final water level and return the granted
/// total (4-lane order).
[[gnu::noinline]] double grant_at_level(const double* __restrict d,
                                        double* __restrict out, std::size_t n,
                                        double level) noexcept {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  // vec-check: waterfill-grant
  for (; i + 4 <= n; i += 4) {
    const double g0 = std::min(std::max(d[i], 0.0), level);
    const double g1 = std::min(std::max(d[i + 1], 0.0), level);
    const double g2 = std::min(std::max(d[i + 2], 0.0), level);
    const double g3 = std::min(std::max(d[i + 3], 0.0), level);
    out[i] = g0;
    out[i + 1] = g1;
    out[i + 2] = g2;
    out[i + 3] = g3;
    s0 += g0;
    s1 += g1;
    s2 += g2;
    s3 += g3;
  }
  for (; i < n; ++i) {
    const double g = std::min(std::max(d[i], 0.0), level);
    out[i] = g;
    s0 += g;
  }
  return (s0 + s1) + (s2 + s3);
}

/// Branch-free stream compaction: copy every demand strictly above `level`
/// into `out` (preserving order) and return how many there are. Writes
/// unconditionally and bumps the cursor conditionally — no mispredicted
/// store branch. Not vectorizable (data-dependent store index), but it
/// runs once per water-fill, not once per refinement round.
[[gnu::noinline]] std::size_t compact_above(const double* __restrict d,
                                            std::size_t n, double level,
                                            double* __restrict out) noexcept {
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = d[i];
    out[m] = e;
    m += e > level ? 1 : 0;
  }
  return m;
}

}  // namespace

double max_min_fair_allocation_presummed(std::span<const double> demands,
                                         double positive_sum,
                                         std::size_t positive_count,
                                         double capacity,
                                         std::span<double> alloc,
                                         std::vector<double>& refine_scratch) {
  const std::size_t n = demands.size();
  if (n == 0) return 0.0;
  const double* d = demands.data();
  if (capacity <= 0.0) {
    std::fill(alloc.begin(), alloc.end(), 0.0);
    return 0.0;
  }

  // Water-filling over the positive demands (zeros and negatives are
  // granted 0 and consume nothing). Every pass below is a dense
  // branch-free sweep of the whole demand array — no index compaction —
  // because the gather/scatter bookkeeping of the scratch-list variant
  // cost more than the redundant lanes it saved at cluster pool sizes.
  const std::size_t positive = positive_count;

  // Undersubscribed: everyone gets exactly their demand, no water level.
  if (positive_sum <= capacity) {
    double* out = alloc.data();
    // vec-check: waterfill-copy
    for (std::size_t i = 0; i < n; ++i) out[i] = std::max(d[i], 0.0);
    return positive_sum;
  }

  // Oversubscribed: find the water level L with alloc_i = min(d_i, L) and
  // sum(alloc) = capacity by iterative refinement instead of an
  // O(n log n) sort — guess L assuming everyone still unsatisfied splits
  // what the satisfied set leaves over, re-guess. L only rises, so each
  // round either retires demands or terminates; realistic demand mixes
  // converge in a handful of passes (the classic sorted water-fill
  // computes the same fixed point, one element at a time).
  //
  // The first round sweeps the full demand array; the demands it retires
  // (<= the first level) stay retired forever because L only rises, so
  // the survivors are compacted once into `refine_scratch` and every
  // later round sweeps only that (much smaller) set, carrying the retired
  // sum as a fixed base term.
  double level = capacity / static_cast<double>(positive);
  std::size_t above = 0;
  const double base = satisfied_under(d, n, level, above);
  if (above != positive && above != 0) {
    refine_scratch.resize(n);
    double* const sd = refine_scratch.data();
    const std::size_t m = compact_above(d, n, level, sd);
    std::size_t left = above;
    level = (capacity - base) / static_cast<double>(above);
    for (;;) {
      const double satisfied = satisfied_under(sd, m, level, above);
      if (above == left || above == 0) break;
      left = above;
      level = (capacity - (base + satisfied)) / static_cast<double>(above);
    }
  }
  return grant_at_level(d, alloc.data(), n, level);
}

double max_min_fair_allocation_into(
    std::span<const double> demands, double capacity, std::span<double> alloc,
    std::vector<std::uint32_t>& order_scratch) {
  (void)order_scratch;  // kept for API stability; the fill is index-free now
  if (demands.empty()) return 0.0;
  if (capacity <= 0.0) {
    std::fill(alloc.begin(), alloc.end(), 0.0);
    return 0.0;
  }
  std::size_t positive = 0;
  const double positive_sum =
      positive_sum_count(demands.data(), demands.size(), positive);
  std::vector<double> refine_scratch;
  return max_min_fair_allocation_presummed(demands, positive_sum, positive,
                                           capacity, alloc, refine_scratch);
}

std::vector<double> max_min_fair_allocation(std::span<const double> demands,
                                            double capacity) {
  std::vector<double> alloc(demands.size(), 0.0);
  if (demands.empty() || capacity <= 0.0) return alloc;
  std::vector<std::uint32_t> order;
  max_min_fair_allocation_into(demands, capacity, alloc, order);
  return alloc;
}

void FluidLink::allocate_and_advance(std::span<const double> demands,
                                     double desired_load_bps, double dt,
                                     std::vector<double>& alloc) {
  alloc.resize(demands.size());
  // Effective capacity = nominal x fault factor; at the default factor of
  // exactly 1.0 the multiply is IEEE-identical to the nominal path, so
  // fault-free worlds stay bit-for-bit unchanged.
  const double cap = config_.capacity_bps * capacity_factor_;
  const double delivered =
      max_min_fair_allocation_into(demands, cap, alloc, order_scratch_);
  advance_queue(delivered, cap, desired_load_bps, dt);
}

std::span<const double> FluidLink::allocate_and_advance(
    std::span<const double> demands, double desired_load_bps,
    double demand_sum_bps, std::size_t demand_positive, double dt,
    std::vector<double>& alloc) {
  const double cap = config_.capacity_bps * capacity_factor_;
  // Undersubscribed (the off-peak majority of ticks): with non-negative
  // demands the grant vector IS the demand vector, so hand it straight
  // back instead of copying it through `alloc`.
  if (cap > 0.0 && demand_sum_bps <= cap) {
    advance_queue(demand_sum_bps, cap, desired_load_bps, dt);
    return demands;
  }
  alloc.resize(demands.size());
  const double delivered = max_min_fair_allocation_presummed(
      demands, demand_sum_bps, demand_positive, cap, alloc, refine_scratch_);
  advance_queue(delivered, cap, desired_load_bps, dt);
  return alloc;
}

void FluidLink::advance_queue(double delivered, double cap,
                              double desired_load_bps, double dt) noexcept {
  last_utilization_ = cap > 0.0 ? delivered / cap : 0.0;

  // Smooth the desired-load ratio, then relax the standing queue toward
  // the level TCP would hold at that load: empty below rho_knee, full
  // above rho_full, ramping in between. A full outage (cap == 0) pins the
  // instantaneous ratio past rho_full — the queue saturates instead of
  // dividing by zero.
  const double instant_rho =
      cap > 0.0 ? desired_load_bps / cap : config_.rho_full + 1.0;
  const double a_rho = std::min(1.0, dt / config_.rho_tau);
  rho_ += a_rho * (instant_rho - rho_);

  const double buffer_bytes =
      config_.buffer_seconds * config_.capacity_bps / 8.0;
  const double ramp = std::clamp(
      (rho_ - config_.rho_knee) / (config_.rho_full - config_.rho_knee),
      0.0, 1.0);
  const double target = buffer_bytes * ramp;
  const double a_q = std::min(1.0, dt / config_.queue_tau);
  queue_bytes_ += a_q * (target - queue_bytes_);
  queue_bytes_ = std::clamp(queue_bytes_, 0.0, buffer_bytes);
}

std::vector<double> FluidLink::allocate_and_advance(
    std::span<const double> demands, double desired_load_bps, double dt) {
  std::vector<double> alloc;
  allocate_and_advance(demands, desired_load_bps, dt, alloc);
  return alloc;
}

double FluidLink::queueing_delay() const noexcept {
  return queue_bytes_ * 8.0 / config_.capacity_bps;
}

double FluidLink::rtt() const noexcept {
  return config_.base_rtt + queueing_delay();
}

double FluidLink::occupancy() const noexcept {
  const double buffer_bytes =
      config_.buffer_seconds * config_.capacity_bps / 8.0;
  return buffer_bytes <= 0.0 ? 0.0 : queue_bytes_ / buffer_bytes;
}

double FluidLink::loss_fraction() const noexcept {
  const double x = occupancy();
  if (x <= config_.loss_knee) return config_.base_loss;
  const double t = (x - config_.loss_knee) / (1.0 - config_.loss_knee);
  return config_.base_loss + (config_.max_loss - config_.base_loss) * t * t;
}

}  // namespace xp::video
